// Package prof is simprof, the simulator profiling layer: a windowed
// telemetry sampler that turns cumulative run statistics into
// per-window timelines, and a cycle attribution accounter that
// classifies every core cycle into exclusive stall buckets.
//
// The package deliberately depends on nothing but the standard
// library: the cpu package holds a *CoreAccount and bumps it from its
// tick path, the exp package owns the sampler and its probes, and the
// serve/cmd layers render or ship the resulting Timeline/Breakdown
// values. Everything here is observation-only — attaching a profiler
// must never change simulated results (the exp result-neutrality test
// pins this), and a nil *CoreAccount / nil *Sampler costs exactly one
// branch on the paths that consult it.
package prof

import "fmt"

// Bucket is one exclusive cycle-attribution class. Every counted core
// cycle lands in exactly one bucket, so per-core bucket counts sum to
// the core's total cycles (the conservation invariant the exp test
// enforces). The taxonomy mirrors the bottleneck decomposition of the
// paper's evaluation: Busy is retiring/issuing work, ROBFull and
// LQSQFull are core-side MLP limits (§2, Fig. 2), DepIndirect is the
// serialized pointer-chase the accelerator exists to break, DRAMBound
// is outstanding memory with no dependence serialization, Spin is
// synchronization, Other is the small remainder (front-end gaps, ALU
// latency shadows). Classification is by root cause: the memory-bound
// buckets take precedence over ROBFull, so a window that filled up
// behind outstanding indirect loads is charged to the memory system,
// not to ROB capacity.
type Bucket uint8

const (
	// Busy: the core retired, fetched, or issued at least one µop this
	// cycle.
	Busy Bucket = iota
	// Spin: the window head is a barrier polling a predicate that does
	// not yet hold.
	Spin
	// ROBFull: fetch stalled because the reorder buffer cannot hold
	// the next µop and no memory is outstanding — the pure window-
	// capacity limit. (A full ROB with loads in flight is charged to
	// DepIndirect/DRAMBound instead: the capacity shortage is a
	// symptom of memory latency there, not the root cause.)
	ROBFull
	// LQSQFull: the oldest ready memory op cannot issue because its
	// load- or store-queue is at capacity.
	LQSQFull
	// DepIndirect: memory is outstanding and every unissued µop waits
	// on a dependence chain through it — the serialized indirect-access
	// signature (MLP limited by address dependences, not capacity).
	DepIndirect
	// DRAMBound: memory is outstanding and nothing else explains the
	// stall — the core is simply waiting on the memory system.
	DRAMBound
	// Other: no progress and no memory outstanding (front-end gaps,
	// ALU-latency shadows, atomic fencing edges).
	Other

	// NumBuckets is the number of attribution classes.
	NumBuckets
)

// bucketNames fixes the wire and display names of the buckets.
var bucketNames = [NumBuckets]string{
	Busy:        "busy",
	Spin:        "spin",
	ROBFull:     "rob_full",
	LQSQFull:    "lq_sq_full",
	DepIndirect: "dep_indirect",
	DRAMBound:   "dram_bound",
	Other:       "other",
}

// String returns the bucket's stable name ("busy", "rob_full", ...).
func (b Bucket) String() string {
	if b < NumBuckets {
		return bucketNames[b]
	}
	return fmt.Sprintf("bucket(%d)", uint8(b))
}

// BucketNames returns the bucket names in Bucket order — the column
// schema of a Breakdown.
func BucketNames() []string {
	out := make([]string, NumBuckets)
	copy(out, bucketNames[:])
	return out
}

// CoreAccount accumulates one core's cycle attribution. The core holds
// a pointer and bumps it from its tick (one add per cycle) and
// fast-forward (one bulk add per jump) paths; nothing here allocates
// or synchronizes, matching the simulator's single-goroutine regime.
type CoreAccount struct {
	Counts [NumBuckets]uint64
}

// Add attributes n cycles to bucket b.
func (a *CoreAccount) Add(b Bucket, n uint64) { a.Counts[b] += n }

// Total returns the cycles accounted so far — by construction the
// core's counted cycles.
func (a *CoreAccount) Total() uint64 {
	var t uint64
	for _, c := range a.Counts {
		t += c
	}
	return t
}

// Breakdown is the per-run stall attribution: one row of bucket counts
// per core, in Bucket order. It is part of the Result wire form
// (omitempty), so field names are stable.
type Breakdown struct {
	Buckets []string   `json:"buckets"`
	Cores   [][]uint64 `json:"cores"`
}

// NewBreakdown folds per-core accounts into a Breakdown.
func NewBreakdown(accounts []*CoreAccount) *Breakdown {
	b := &Breakdown{Buckets: BucketNames(), Cores: make([][]uint64, len(accounts))}
	for i, a := range accounts {
		row := make([]uint64, NumBuckets)
		copy(row, a.Counts[:])
		b.Cores[i] = row
	}
	return b
}

// Totals sums the per-core rows into one aggregate row.
func (b *Breakdown) Totals() []uint64 {
	t := make([]uint64, len(b.Buckets))
	for _, row := range b.Cores {
		for i, c := range row {
			if i < len(t) {
				t[i] += c
			}
		}
	}
	return t
}
