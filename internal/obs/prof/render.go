package prof

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// sparkRunes are the eight block-element levels of a sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as unicode block elements, scaled from zero
// to the series maximum (an all-zero series is a flat baseline). It is
// the terminal view of one timeline series.
func Sparkline(values []float64) string {
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		i := 0
		if max > 0 && v > 0 {
			i = int(v / max * float64(len(sparkRunes)-1))
			if i >= len(sparkRunes) {
				i = len(sparkRunes) - 1
			}
			if i < 0 {
				i = 0
			}
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

// sparkWidth caps the report sparkline width; longer series are
// down-sampled by taking the mean of each chunk so the overall shape
// survives.
const sparkWidth = 60

func condense(values []float64) []float64 {
	if len(values) <= sparkWidth {
		return values
	}
	out := make([]float64, sparkWidth)
	for i := range out {
		lo := i * len(values) / sparkWidth
		hi := (i + 1) * len(values) / sparkWidth
		if hi == lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, v := range values[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// WriteReport renders the timeline as an aligned terminal report: one
// line per series with min/mean/max and a sparkline.
func (t *Timeline) WriteReport(w io.Writer) error {
	if t == nil || t.Len() == 0 {
		_, err := fmt.Fprintln(w, "timeline: no samples recorded")
		return err
	}
	if _, err := fmt.Fprintf(w, "timeline: %d windows of ~%d cycles (span %d)\n",
		t.Len(), t.Window, t.Cycles[len(t.Cycles)-1]); err != nil {
		return err
	}
	width := 0
	for _, s := range t.Series {
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	for _, s := range t.Series {
		min, max, sum := math.Inf(1), math.Inf(-1), 0.0
		for _, v := range s.Values {
			min = math.Min(min, v)
			max = math.Max(max, v)
			sum += v
		}
		mean := sum / float64(len(s.Values))
		if _, err := fmt.Fprintf(w, "  %-*s  min %-12s mean %-12s max %-12s %s\n",
			width, s.Name, fmtVal(min), fmtVal(mean), fmtVal(max), Sparkline(condense(s.Values))); err != nil {
			return err
		}
	}
	return nil
}

// fmtVal renders a report value compactly: fixed-point for readable
// magnitudes, scientific for the extremes.
func fmtVal(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 1e7 || av < 1e-3:
		return fmt.Sprintf("%.3g", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// WriteReport renders the stall attribution as per-core percentage
// rows plus an aggregate, in bucket order.
func (b *Breakdown) WriteReport(w io.Writer) error {
	if b == nil || len(b.Cores) == 0 {
		_, err := fmt.Fprintln(w, "stall breakdown: no cores profiled")
		return err
	}
	if _, err := fmt.Fprintf(w, "cycle attribution (%% of core cycles)\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-6s", "core"); err != nil {
		return err
	}
	for _, name := range b.Buckets {
		if _, err := fmt.Fprintf(w, "  %12s", name); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	row := func(label string, counts []uint64) error {
		total := uint64(0)
		for _, c := range counts {
			total += c
		}
		if _, err := fmt.Fprintf(w, "  %-6s", label); err != nil {
			return err
		}
		for _, c := range counts {
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(c) / float64(total)
			}
			if _, err := fmt.Fprintf(w, "  %11.1f%%", pct); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "  (%d cycles)\n", total)
		return err
	}
	for i, counts := range b.Cores {
		if err := row(fmt.Sprint(i), counts); err != nil {
			return err
		}
	}
	if len(b.Cores) > 1 {
		if err := row("all", b.Totals()); err != nil {
			return err
		}
	}
	return nil
}
