package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func ev(kind Kind, cycle uint64, args ...int64) Event {
	e := Event{Cycle: cycle, Kind: kind, Src: "t."}
	copy(e.Args[:], args)
	return e
}

func TestNilSinkIsInert(t *testing.T) {
	var s *Sink
	s.Emit(ev(EvDRAMAct, 1))
	if s.Enabled() {
		t.Fatal("nil sink reports enabled")
	}
	if s.Total() != 0 || s.Dropped() != 0 || s.Events() != nil {
		t.Fatal("nil sink accumulated state")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRingKeepsMostRecentAndCountsDrops(t *testing.T) {
	s := NewSink(4)
	for i := uint64(1); i <= 10; i++ {
		s.Emit(ev(EvCacheFill, i, int64(i)))
	}
	if s.Total() != 10 {
		t.Fatalf("total = %d, want 10", s.Total())
	}
	if s.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", s.Dropped())
	}
	got := s.Events()
	if len(got) != 4 {
		t.Fatalf("kept %d events, want 4", len(got))
	}
	for i, e := range got {
		if want := uint64(7 + i); e.Cycle != want {
			t.Fatalf("event %d at cycle %d, want %d (chronological order lost)", i, e.Cycle, want)
		}
	}
}

func TestMaskFilters(t *testing.T) {
	s := NewSink(16)
	s.SetMask(MaskDRAM)
	s.Emit(ev(EvDRAMAct, 1))
	s.Emit(ev(EvCacheFill, 2))
	s.Emit(ev(EvFastForward, 3))
	s.Emit(ev(EvDRAMRead, 4))
	if s.Total() != 2 {
		t.Fatalf("mask let %d events through, want 2", s.Total())
	}
	for _, e := range s.Events() {
		if e.Kind.Category() != "dram" {
			t.Fatalf("non-dram event %v passed MaskDRAM", e.Kind)
		}
	}
}

func TestJSONLStableBytesAndValidJSON(t *testing.T) {
	s := NewSink(8)
	s.Emit(ev(EvDRAMAct, 12, 0, 0, 1, 2, 17, 6))
	s.Emit(ev(EvDRAMRefresh, 20, 3, 10))
	s.Emit(ev(EvFastForward, 30, 90, 59))
	var a, b bytes.Buffer
	if err := s.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodings differ")
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 3", len(lines))
	}
	var first struct {
		Cycle uint64           `json:"cycle"`
		Cat   string           `json:"cat"`
		Name  string           `json:"name"`
		Src   string           `json:"src"`
		Args  map[string]int64 `json:"args"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line not valid JSON: %v\n%s", err, lines[0])
	}
	if first.Cat != "dram" || first.Name != "ACT" || first.Cycle != 12 {
		t.Fatalf("decoded %+v", first)
	}
	if first.Args["row"] != 17 || first.Args["dram_cycle"] != 6 || first.Args["bank_group"] != 1 {
		t.Fatalf("args decoded wrong: %v", first.Args)
	}
	if !strings.Contains(lines[1], `"name":"REF"`) || !strings.Contains(lines[2], `"name":"fast_forward"`) {
		t.Fatalf("unexpected lines:\n%s", a.String())
	}
}

func TestSpillJSONLLosesNothing(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(4) // tiny ring: forces many flushes
	s.SpillJSONL(&buf)
	const n = 57
	for i := uint64(0); i < n; i++ {
		s.Emit(ev(EvCacheEvict, i, int64(i), 1, 0))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != n {
		t.Fatalf("spilled %d lines, want %d", len(lines), n)
	}
	// Chronological and complete.
	for i, ln := range lines {
		var e struct {
			Cycle uint64 `json:"cycle"`
		}
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if e.Cycle != uint64(i) {
			t.Fatalf("line %d has cycle %d", i, e.Cycle)
		}
	}
	if s.Dropped() != 0 {
		t.Fatalf("spill mode dropped %d events", s.Dropped())
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	s := NewSink(8)
	s.Emit(ev(EvDRAMAct, 5, 1, 0, 2, 3, 9, 2))
	s.Emit(ev(EvFastForward, 10, 100, 89))
	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Tid  int64          `json:"tid"`
			Dur  *float64       `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("%d events, want 2", len(doc.TraceEvents))
	}
	act, ff := doc.TraceEvents[0], doc.TraceEvents[1]
	if act.Ph != "i" || act.Tid != 1 {
		t.Fatalf("ACT encoded %+v", act)
	}
	if ff.Ph != "X" || ff.Dur == nil || *ff.Dur != 89 {
		t.Fatalf("fast-forward encoded %+v", ff)
	}

	// Spilled chrome output must decode identically.
	var spilled bytes.Buffer
	s2 := NewSink(1)
	s2.SpillChrome(&spilled)
	s2.Emit(ev(EvDRAMAct, 5, 1, 0, 2, 3, 9, 2))
	s2.Emit(ev(EvFastForward, 10, 100, 89))
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(spilled.Bytes(), &doc); err != nil {
		t.Fatalf("spilled chrome trace not valid JSON: %v\n%s", err, spilled.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("spilled %d events, want 2", len(doc.TraceEvents))
	}
}

func TestEmitZeroAllocs(t *testing.T) {
	// Ring-mode Emit in steady state must not allocate: the engine's
	// hot loop emits fast-forward events through this path.
	s := NewSink(128)
	for i := 0; i < 256; i++ {
		s.Emit(ev(EvFastForward, uint64(i), 1, 1)) // fill + wrap to steady state
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s.Emit(Event{Cycle: 1, Kind: EvFastForward, Src: "engine", Args: [6]int64{2, 1}})
	})
	if allocs != 0 {
		t.Fatalf("Emit allocates %v per op in steady state", allocs)
	}
}
