package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
)

// Kind identifies one event type. The set is closed on purpose: a
// fixed enum keeps Event a flat value (no interface, no allocation on
// the emit path) and gives every kind a stable category, name and
// argument schema in the encoders.
type Kind uint8

const (
	// EvDRAMAct is a DRAM row activate. Args: channel, rank,
	// bank_group, bank, row, dram_cycle.
	EvDRAMAct Kind = iota
	// EvDRAMPre is a DRAM precharge. Args as EvDRAMAct.
	EvDRAMPre
	// EvDRAMRead is a read column command. Args as EvDRAMAct.
	EvDRAMRead
	// EvDRAMWrite is a write column command. Args as EvDRAMAct.
	EvDRAMWrite
	// EvDRAMRefresh is an all-bank refresh. Args: channel, dram_cycle.
	EvDRAMRefresh
	// EvCacheFill is a line installed into a cache. Args: line, set.
	EvCacheFill
	// EvCacheEvict is a valid line evicted from a cache. Args: line,
	// set, dirty.
	EvCacheEvict
	// EvDXEnqueue is an instruction entering the DX100 request buffer.
	// Args: op, queue_len (after the enqueue).
	EvDXEnqueue
	// EvDXDrain is an instruction retiring from the DX100 pipeline.
	// Args: op, queue_len (after the drain).
	EvDXDrain
	// EvFastForward is an engine clock jump over provably idle cycles.
	// Cycle is the jump origin; args: to, skipped.
	EvFastForward
	// EvProfCounter is one simprof timeline sample: Src is the probe
	// name and Args[0] holds math.Float64bits of the value. The
	// encoders decode it back to a float — in Chrome trace_event form
	// it becomes a "C" (counter) event, which viewers render as a
	// counter track overlaying the instant/duration events of the same
	// trace.
	EvProfCounter
	// EvSpan is one completed lifecycle span (see internal/obs/span):
	// Src is the span name, Cycle the start timestamp in microseconds,
	// and Args hold [trace_hi, trace_lo, span_id, parent_span_id,
	// dur_us, status]. The Chrome encoder renders it as a complete
	// ("ph":"X") event whose args carry the W3C trace/span ids as hex
	// strings, so Perfetto shows one block per span.
	EvSpan
	// EvSpanBegin opens a long-lived async span (Chrome nestable
	// "ph":"b", matched to its EvSpanEnd by span id). Args as EvSpan
	// with dur_us unused.
	EvSpanBegin
	// EvSpanEnd closes an async span ("ph":"e"). Args as EvSpanBegin.
	EvSpanEnd

	numKinds
)

// kindMeta fixes each kind's category, display name and argument
// schema for the encoders.
var kindMeta = [numKinds]struct {
	cat, name string
	args      []string
}{
	EvDRAMAct:     {"dram", "ACT", []string{"channel", "rank", "bank_group", "bank", "row", "dram_cycle"}},
	EvDRAMPre:     {"dram", "PRE", []string{"channel", "rank", "bank_group", "bank", "row", "dram_cycle"}},
	EvDRAMRead:    {"dram", "RD", []string{"channel", "rank", "bank_group", "bank", "row", "dram_cycle"}},
	EvDRAMWrite:   {"dram", "WR", []string{"channel", "rank", "bank_group", "bank", "row", "dram_cycle"}},
	EvDRAMRefresh: {"dram", "REF", []string{"channel", "dram_cycle"}},
	EvCacheFill:   {"cache", "fill", []string{"line", "set"}},
	EvCacheEvict:  {"cache", "evict", []string{"line", "set", "dirty"}},
	EvDXEnqueue:   {"dx100", "enqueue", []string{"op", "queue_len"}},
	EvDXDrain:     {"dx100", "drain", []string{"op", "queue_len"}},
	EvFastForward: {"engine", "fast_forward", []string{"to", "skipped"}},
	EvProfCounter: {"prof", "counter", []string{"value"}},
	EvSpan:        {"span", "span", []string{"trace_hi", "trace_lo", "span_id", "parent_span_id", "dur_us", "status"}},
	EvSpanBegin:   {"span", "span_begin", []string{"trace_hi", "trace_lo", "span_id", "parent_span_id", "dur_us", "status"}},
	EvSpanEnd:     {"span", "span_end", []string{"trace_hi", "trace_lo", "span_id", "parent_span_id", "dur_us", "status"}},
}

// MaskSpans covers the three lifecycle-span kinds — the span
// recorder's view.
const MaskSpans = Mask(1<<EvSpan | 1<<EvSpanBegin | 1<<EvSpanEnd)

// SpanEvent builds a span record for the given kind (EvSpan,
// EvSpanBegin or EvSpanEnd). name becomes Src; startUS is the span's
// start timestamp in microseconds; the trace and span ids travel
// bit-packed through Args and come back out as hex strings in both
// encoders.
func SpanEvent(kind Kind, startUS uint64, name string, traceHi, traceLo uint64, spanID, parentID uint64, durUS int64, status int64) Event {
	return Event{
		Cycle: startUS,
		Kind:  kind,
		Src:   name,
		Args:  [6]int64{int64(traceHi), int64(traceLo), int64(spanID), int64(parentID), durUS, status},
	}
}

// CounterEvent builds an EvProfCounter sample: name becomes Src, the
// float value is bit-packed into Args[0] (the encoders unpack it).
func CounterEvent(cycle uint64, name string, value float64) Event {
	return Event{
		Cycle: cycle,
		Kind:  EvProfCounter,
		Src:   name,
		Args:  [6]int64{int64(math.Float64bits(value))},
	}
}

// Category returns the kind's category ("dram", "cache", "dx100",
// "engine").
func (k Kind) Category() string { return kindMeta[k].cat }

// String returns the kind's display name ("ACT", "fill", ...).
func (k Kind) String() string { return kindMeta[k].name }

// Mask selects which kinds a sink records; bit i covers Kind(i).
type Mask uint32

// MaskAll records every kind.
const MaskAll = Mask(1<<numKinds - 1)

// MaskDRAM covers the five DRAM command kinds — the protocol checker's
// and the golden-trace test's view.
const MaskDRAM = Mask(1<<EvDRAMAct | 1<<EvDRAMPre | 1<<EvDRAMRead | 1<<EvDRAMWrite | 1<<EvDRAMRefresh)

// MaskOf builds a mask covering exactly the given kinds.
func MaskOf(kinds ...Kind) Mask {
	var m Mask
	for _, k := range kinds {
		m |= 1 << k
	}
	return m
}

// Event is one trace record: a flat value so the ring buffer holds
// events without boxing. Args are positional; kindMeta names them.
// Src identifies the emitting component instance (a prefix string the
// component computed once, e.g. "l1d.", "dx100.0.") — assigning it
// copies a string header, never allocates.
type Event struct {
	Cycle uint64
	Kind  Kind
	Src   string
	Args  [6]int64
}

// Sink collects events into a fixed-capacity ring. Without a spill
// writer the ring keeps the most recent Cap events (older ones are
// overwritten and counted as dropped). With a spill writer the ring
// becomes a batch buffer: it is encoded and flushed whenever full, so
// nothing is lost. A nil *Sink is the disabled state: Emit on a nil
// receiver returns immediately, which is what makes tracing zero-cost
// when off.
//
// A sink is single-goroutine, like the simulation it observes.
type Sink struct {
	mask    Mask
	ring    []Event
	start   int // oldest event's slot, ring mode only
	count   int
	total   uint64
	dropped uint64

	spill       io.Writer
	chrome      bool
	wroteHeader bool
	spilled     uint64
	buf         []byte
	err         error
}

// DefaultSinkCap is the ring capacity when NewSink is given n <= 0.
const DefaultSinkCap = 1 << 16

// NewSink returns a sink recording all kinds into a ring of capacity
// n (DefaultSinkCap when n <= 0).
func NewSink(n int) *Sink {
	if n <= 0 {
		n = DefaultSinkCap
	}
	return &Sink{mask: MaskAll, ring: make([]Event, 0, n)}
}

// SetMask restricts the sink to the masked kinds.
func (s *Sink) SetMask(m Mask) { s.mask = m }

// SpillJSONL streams overflowing events to w as JSON Lines, one event
// per line. Call Close (or Flush) to drain the tail.
func (s *Sink) SpillJSONL(w io.Writer) {
	s.spill, s.chrome = w, false
}

// SpillChrome streams overflowing events to w in Chrome trace_event
// format (the JSON object chrome://tracing and Perfetto open). One
// simulated cycle is encoded as one microsecond of trace time. Close
// must be called to terminate the JSON document.
func (s *Sink) SpillChrome(w io.Writer) {
	s.spill, s.chrome = w, true
}

// Enabled reports whether the sink records anything; callers on hot
// paths guard event construction with it (or with a plain nil check).
func (s *Sink) Enabled() bool { return s != nil }

// Emit records one event. It is safe to call on a nil sink, which does
// nothing — the disabled state costs one branch.
func (s *Sink) Emit(ev Event) {
	if s == nil || s.mask&(1<<ev.Kind) == 0 {
		return
	}
	s.total++
	if s.spill != nil {
		if len(s.ring) == cap(s.ring) {
			s.flushRing()
		}
		s.ring = append(s.ring, ev)
		return
	}
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, ev)
		return
	}
	// Ring full: overwrite the oldest.
	s.ring[s.start] = ev
	s.start = (s.start + 1) % len(s.ring)
	s.dropped++
}

// Total returns how many events passed the mask, including any
// overwritten or already spilled.
func (s *Sink) Total() uint64 {
	if s == nil {
		return 0
	}
	return s.total
}

// Dropped returns how many events were overwritten in ring mode.
func (s *Sink) Dropped() uint64 {
	if s == nil {
		return 0
	}
	return s.dropped
}

// Events returns the buffered events in chronological order: the whole
// recorded trace in ring mode (minus dropped), the not-yet-flushed tail
// in spill mode.
func (s *Sink) Events() []Event {
	if s == nil {
		return nil
	}
	out := make([]Event, 0, len(s.ring))
	out = append(out, s.ring[s.start:]...)
	out = append(out, s.ring[:s.start]...)
	return out
}

// Flush spills buffered events to the spill writer, if any.
func (s *Sink) Flush() error {
	if s == nil || s.spill == nil {
		return s.sinkErr()
	}
	s.flushRing()
	return s.sinkErr()
}

// Close flushes and, for Chrome spill, terminates the JSON document.
// The sink must not be used after Close.
func (s *Sink) Close() error {
	if s == nil {
		return nil
	}
	if s.spill != nil {
		s.flushRing()
		if s.chrome {
			if !s.wroteHeader {
				s.write([]byte(chromeHeader))
				s.wroteHeader = true
			}
			s.write([]byte(chromeFooter))
		}
	}
	return s.sinkErr()
}

func (s *Sink) sinkErr() error {
	if s == nil {
		return nil
	}
	return s.err
}

func (s *Sink) write(b []byte) {
	if s.err != nil {
		return
	}
	if _, err := s.spill.Write(b); err != nil {
		s.err = fmt.Errorf("obs: trace spill: %w", err)
	}
}

const chromeHeader = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"
const chromeFooter = "\n]}\n"

func (s *Sink) flushRing() {
	for _, ev := range s.ring {
		s.buf = s.buf[:0]
		if s.chrome {
			if s.wroteHeader {
				s.buf = append(s.buf, ",\n"...)
			} else {
				s.buf = append(s.buf, chromeHeader...)
				s.wroteHeader = true
			}
			s.buf = appendChrome(s.buf, ev)
		} else {
			s.buf = appendJSONL(s.buf, ev)
			s.buf = append(s.buf, '\n')
		}
		s.write(s.buf)
		s.spilled++
	}
	s.ring = s.ring[:0]
}

// WriteJSONL encodes the buffered events (see Events) as JSON Lines.
func (s *Sink) WriteJSONL(w io.Writer) error {
	var buf []byte
	for _, ev := range s.Events() {
		buf = appendJSONL(buf[:0], ev)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// WriteChromeTrace encodes the buffered events as a complete Chrome
// trace_event JSON document.
func (s *Sink) WriteChromeTrace(w io.Writer) error {
	if _, err := io.WriteString(w, chromeHeader); err != nil {
		return err
	}
	var buf []byte
	for i, ev := range s.Events() {
		buf = buf[:0]
		if i > 0 {
			buf = append(buf, ",\n"...)
		}
		buf = appendChrome(buf, ev)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, chromeFooter)
	return err
}

// appendJSONL renders one event as a single JSON line with a fixed key
// order, so identical traces encode to identical bytes:
//
//	{"cycle":12,"cat":"dram","name":"ACT","src":"dram.","args":{"channel":0,...}}
func appendJSONL(b []byte, ev Event) []byte {
	m := kindMeta[ev.Kind]
	b = append(b, `{"cycle":`...)
	b = strconv.AppendUint(b, ev.Cycle, 10)
	b = append(b, `,"cat":"`...)
	b = append(b, m.cat...)
	b = append(b, `","name":"`...)
	b = append(b, m.name...)
	b = append(b, `","src":`...)
	b = strconv.AppendQuote(b, ev.Src)
	b = append(b, `,"args":{`...)
	if ev.Kind == EvProfCounter {
		// The single arg is a bit-packed float, not an integer.
		b = append(b, `"value":`...)
		b = appendProfValue(b, ev)
		b = append(b, "}}"...)
		return b
	}
	if isSpanKind(ev.Kind) {
		// Trace/span ids are bit-packed; render them as W3C hex strings.
		b = appendSpanArgs(b, ev)
		b = append(b, "}}"...)
		return b
	}
	for i, an := range m.args {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, '"')
		b = append(b, an...)
		b = append(b, `":`...)
		b = strconv.AppendInt(b, ev.Args[i], 10)
	}
	b = append(b, "}}"...)
	return b
}

// appendProfValue decodes an EvProfCounter's bit-packed float and
// renders it as a JSON number (non-finite values cannot arise: the
// sampler's ratio probes define 0/0 as 0).
func appendProfValue(b []byte, ev Event) []byte {
	return strconv.AppendFloat(b, math.Float64frombits(uint64(ev.Args[0])), 'g', -1, 64)
}

// appendChrome renders one event as a Chrome trace_event object.
// DRAM/cache/dx100 events are instants ("ph":"i"); fast-forward jumps
// are complete events ("ph":"X") whose duration is the skipped span,
// which makes idle stretches visible as blocks on the timeline. The
// thread id is the DRAM channel for DRAM commands (one lane per
// channel in the viewer) and 0 otherwise.
func appendChrome(b []byte, ev Event) []byte {
	m := kindMeta[ev.Kind]
	if isSpanKind(ev.Kind) {
		return appendChromeSpan(b, ev)
	}
	if ev.Kind == EvProfCounter {
		// Counter events ("ph":"C") are named by the probe so each one
		// gets its own counter track in the viewer.
		b = append(b, `{"name":`...)
		b = strconv.AppendQuote(b, ev.Src)
		b = append(b, `,"cat":"prof","ph":"C","ts":`...)
		b = strconv.AppendUint(b, ev.Cycle, 10)
		b = append(b, `,"pid":0,"args":{"value":`...)
		b = appendProfValue(b, ev)
		b = append(b, "}}"...)
		return b
	}
	tid := int64(0)
	if ev.Kind <= EvDRAMRefresh {
		tid = ev.Args[0]
	}
	b = append(b, `{"name":"`...)
	b = append(b, m.name...)
	b = append(b, `","cat":"`...)
	b = append(b, m.cat...)
	b = append(b, '"')
	if ev.Kind == EvFastForward {
		b = append(b, `,"ph":"X","dur":`...)
		b = strconv.AppendInt(b, ev.Args[1], 10)
	} else {
		b = append(b, `,"ph":"i","s":"g"`...)
	}
	b = append(b, `,"ts":`...)
	b = strconv.AppendUint(b, ev.Cycle, 10)
	b = append(b, `,"pid":0,"tid":`...)
	b = strconv.AppendInt(b, tid, 10)
	b = append(b, `,"args":{"src":`...)
	b = strconv.AppendQuote(b, ev.Src)
	for i, an := range m.args {
		b = append(b, `,"`...)
		b = append(b, an...)
		b = append(b, `":`...)
		b = strconv.AppendInt(b, ev.Args[i], 10)
	}
	b = append(b, "}}"...)
	return b
}

func isSpanKind(k Kind) bool { return k == EvSpan || k == EvSpanBegin || k == EvSpanEnd }

// appendHex appends v as exactly 2*n lowercase hex digits (the W3C
// traceparent field encoding; n is the id width in bytes).
func appendHex(b []byte, v uint64, n int) []byte {
	const digits = "0123456789abcdef"
	for i := n*8 - 4; i >= 0; i -= 4 {
		b = append(b, digits[(v>>uint(i))&0xf])
	}
	return b
}

// appendSpanArgs renders a span event's identifiers and status as the
// shared args body of both encoders.
func appendSpanArgs(b []byte, ev Event) []byte {
	b = append(b, `"trace_id":"`...)
	b = appendHex(b, uint64(ev.Args[0]), 8)
	b = appendHex(b, uint64(ev.Args[1]), 8)
	b = append(b, `","span_id":"`...)
	b = appendHex(b, uint64(ev.Args[2]), 8)
	b = append(b, '"')
	if ev.Args[3] != 0 {
		b = append(b, `,"parent_span_id":"`...)
		b = appendHex(b, uint64(ev.Args[3]), 8)
		b = append(b, '"')
	}
	b = append(b, `,"status":`...)
	b = strconv.AppendInt(b, ev.Args[5], 10)
	return b
}

// appendChromeSpan renders a span event as a Chrome trace_event
// object: EvSpan becomes a complete event ("ph":"X") with its duration,
// EvSpanBegin/EvSpanEnd become nestable async events ("b"/"e") matched
// by span id. Each trace gets its own lane: the thread id is the low
// half of the trace id, so concurrent requests do not interleave on
// one track.
func appendChromeSpan(b []byte, ev Event) []byte {
	b = append(b, `{"name":`...)
	b = strconv.AppendQuote(b, ev.Src)
	b = append(b, `,"cat":"span"`...)
	switch ev.Kind {
	case EvSpan:
		b = append(b, `,"ph":"X","dur":`...)
		b = strconv.AppendInt(b, ev.Args[4], 10)
	case EvSpanBegin:
		b = append(b, `,"ph":"b","id":"0x`...)
		b = appendHex(b, uint64(ev.Args[2]), 8)
		b = append(b, '"')
	case EvSpanEnd:
		b = append(b, `,"ph":"e","id":"0x`...)
		b = appendHex(b, uint64(ev.Args[2]), 8)
		b = append(b, '"')
	}
	b = append(b, `,"ts":`...)
	b = strconv.AppendUint(b, ev.Cycle, 10)
	b = append(b, `,"pid":0,"tid":`...)
	b = strconv.AppendUint(b, uint64(uint32(uint64(ev.Args[1]))), 10)
	b = append(b, `,"args":{`...)
	b = appendSpanArgs(b, ev)
	b = append(b, "}}"...)
	return b
}
