package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Label is one Prometheus label pair applied to every series of an
// encoded snapshot (e.g. {run="3f2a91bc00d1"}).
type Label struct {
	Key, Value string
}

// PromName sanitizes an internal metric name ("dram.rowhits",
// "core0.instructions") into the Prometheus charset: every character
// outside [a-zA-Z0-9_:] becomes '_', and a leading digit is prefixed
// with '_'. The mapping is stable, so sanitized names stay comparable
// across runs.
func PromName(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 1)
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if i == 0 && c >= '0' && c <= '9' {
			b.WriteByte('_')
		}
		if ok {
			b.WriteRune(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// renderLabels renders {k="v",...} or "" when there are no labels.
// Label values are escaped per the exposition format.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		v := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(l.Value)
		fmt.Fprintf(&b, `%s="%s"`, PromName(l.Key), v)
	}
	b.WriteByte('}')
	return b.String()
}

// appendLabel renders labels plus one extra pair — the histogram
// bucket "le" label.
func appendLabel(labels []Label, key, value string) string {
	all := make([]Label, 0, len(labels)+1)
	all = append(all, labels...)
	all = append(all, Label{key, value})
	return renderLabels(all)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus encodes the snapshot in the Prometheus text
// exposition format. Every metric name is prefixed with prefix and
// sanitized through PromName; labels (if any) are applied to every
// series. Output is sorted by metric name, so two identical snapshots
// encode to identical bytes.
func (s Snapshot) WritePrometheus(w io.Writer, prefix string, labels ...Label) error {
	ls := renderLabels(labels)
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := PromName(prefix + n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s%s %s\n", pn, pn, ls, formatValue(s.Counters[n])); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := PromName(prefix + n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %s\n", pn, pn, ls, formatValue(s.Gauges[n])); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		pn := PromName(prefix + n)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		// Buckets are cumulative in the exposition format; the stored
		// counts are per-bucket.
		cum := uint64(0)
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = formatValue(h.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", pn, appendLabel(labels, "le", le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n", pn, ls, formatValue(h.Sum), pn, ls, h.Count); err != nil {
			return err
		}
	}
	return nil
}
