package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterTouchedSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	if c.Touched() {
		t.Fatal("fresh counter is touched")
	}
	if got := r.CounterNames(); len(got) != 0 {
		t.Fatalf("untouched counter listed: %v", got)
	}
	c.Add(2)
	c.Inc()
	if c.Value() != 3 {
		t.Fatalf("value = %v, want 3", c.Value())
	}
	if got := r.CounterNames(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("names = %v", got)
	}
	// Handles survive reset; reset un-touches.
	r.ResetCounters()
	if c.Touched() || c.Value() != 0 {
		t.Fatalf("reset did not clear: touched=%v v=%v", c.Touched(), c.Value())
	}
	c.Set(9)
	if r.CounterValue("a") != 9 {
		t.Fatalf("post-reset handle write lost: %v", r.CounterValue("a"))
	}
	// Same name returns the same handle.
	if r.Counter("a") != c {
		t.Fatal("Counter(name) returned a different handle")
	}
}

func TestHistogramBucketsAndObserveN(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("occ", []float64{0, 1, 2, 4})
	h.Observe(0)
	h.Observe(1)
	h.Observe(3)
	h.Observe(100) // +Inf bucket
	h.ObserveN(3, 5)
	snap := r.Snapshot().Histograms["occ"]
	wantCounts := []uint64{1, 1, 0, 6, 1}
	for i, c := range wantCounts {
		if snap.Counts[i] != c {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, snap.Counts[i], c, snap.Counts)
		}
	}
	if snap.Count != 9 {
		t.Fatalf("count = %d, want 9", snap.Count)
	}
	if snap.Sum != 0+1+3+100+15 {
		t.Fatalf("sum = %v", snap.Sum)
	}
	// ObserveN(v, n) must equal n unit observes bit-for-bit.
	a := r.Histogram("a", []float64{0, 2, 8})
	b := r.Histogram("b", []float64{0, 2, 8})
	a.ObserveN(5, 1000)
	for i := 0; i < 1000; i++ {
		b.Observe(5)
	}
	sa, sb := a.snapshot(), b.snapshot()
	if sa.Sum != sb.Sum || sa.Count != sb.Count {
		t.Fatalf("ObserveN diverges from unit observes: %+v vs %+v", sa, sb)
	}
}

func TestExpBounds(t *testing.T) {
	got := ExpBounds(32)
	want := []float64{0, 1, 2, 4, 8, 16, 32}
	if len(got) != len(want) {
		t.Fatalf("bounds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", got, want)
		}
	}
}

func TestSyncMetricsAreRaceFree(t *testing.T) {
	r := NewRegistry()
	c := r.SyncCounter("hits")
	g := r.Gauge("depth")
	h := r.SyncHistogram("lat", ExpBounds(8))
	r.GaugeFunc("fn", func() float64 { return 42 })
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j % 10))
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 4000 {
		t.Fatalf("sync counter = %d, want 4000", c.Value())
	}
	if g.Value() != 4000 {
		t.Fatalf("gauge = %v, want 4000", g.Value())
	}
	snap := r.Snapshot()
	if snap.Gauges["fn"] != 42 {
		t.Fatalf("gauge func = %v", snap.Gauges["fn"])
	}
	if snap.Histograms["lat"].Count != 4000 {
		t.Fatalf("sync histogram count = %d", snap.Histograms["lat"].Count)
	}
}

func TestWritePrometheusDeterministicAndLabeled(t *testing.T) {
	r := NewRegistry()
	r.Counter("dram.rowhits").Add(12)
	r.Counter("core0.instructions").Add(3)
	r.Gauge("queue.depth").Set(5)
	r.Histogram("occ", []float64{0, 1}).ObserveN(1, 4)
	snap := r.Snapshot()
	var a, b strings.Builder
	if err := snap.WritePrometheus(&a, "dx100_run_", Label{"run", "abc"}); err != nil {
		t.Fatal(err)
	}
	if err := snap.WritePrometheus(&b, "dx100_run_", Label{"run", "abc"}); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two encodings of one snapshot differ")
	}
	out := a.String()
	for _, want := range []string{
		"# TYPE dx100_run_dram_rowhits counter",
		`dx100_run_dram_rowhits{run="abc"} 12`,
		`dx100_run_core0_instructions{run="abc"} 3`,
		"# TYPE dx100_run_queue_depth gauge",
		`dx100_run_queue_depth{run="abc"} 5`,
		"# TYPE dx100_run_occ histogram",
		`dx100_run_occ_bucket{run="abc",le="1"} 4`,
		`dx100_run_occ_bucket{run="abc",le="+Inf"} 4`,
		`dx100_run_occ_sum{run="abc"} 4`,
		`dx100_run_occ_count{run="abc"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"dram.rowhits":        "dram_rowhits",
		"dx100.0.rt.inserts":  "dx100_0_rt_inserts",
		"9lives":              "_9lives",
		"already_fine:metric": "already_fine:metric",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSnapshotJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(1)
	r.Gauge("g").Set(2)
	r.Histogram("h", []float64{0, 1}).Observe(1)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["c"] != 1 || back.Gauges["g"] != 2 || back.Histograms["h"].Count != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}
