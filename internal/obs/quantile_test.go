package obs

import (
	"math"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	h.bounds = []float64{1, 2, 4, 8}
	h.counts = make([]uint64, len(h.bounds)+1)
	// 100 observations uniformly in (1,2]: every quantile interpolates
	// inside that single bucket.
	h.ObserveN(1.5, 100)
	s := h.snapshot()
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 1.5},
		{0.95, 1.95},
		{0.99, 1.99},
		{1.0, 2.0},
	} {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestHistogramQuantileAcrossBuckets(t *testing.T) {
	var h Histogram
	h.bounds = []float64{1, 2, 4, 8}
	h.counts = make([]uint64, len(h.bounds)+1)
	h.ObserveN(0.5, 50) // bucket (0,1]
	h.ObserveN(3, 30)   // bucket (2,4]
	h.ObserveN(6, 20)   // bucket (4,8]
	s := h.snapshot()
	// Rank 50 sits exactly at the top of the first bucket.
	if got := s.Quantile(0.5); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("p50 = %v, want 1.0", got)
	}
	// Rank 95 is 15/20 of the way through the (4,8] bucket.
	if got := s.Quantile(0.95); math.Abs(got-7.0) > 1e-9 {
		t.Errorf("p95 = %v, want 7.0", got)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	var h Histogram
	h.bounds = []float64{1, 2}
	h.counts = make([]uint64, len(h.bounds)+1)
	s := h.snapshot()
	if got := s.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty histogram quantile = %v, want NaN", got)
	}
	h.Observe(100) // lands in +Inf bucket
	s = h.snapshot()
	// Everything in the overflow bucket clamps to the last finite bound.
	if got := s.Quantile(0.5); got != 2 {
		t.Errorf("overflow-bucket quantile = %v, want clamp to 2", got)
	}
	if got := s.Quantile(-0.1); !math.IsNaN(got) {
		t.Errorf("Quantile(-0.1) = %v, want NaN", got)
	}
	if got := s.Quantile(1.1); !math.IsNaN(got) {
		t.Errorf("Quantile(1.1) = %v, want NaN", got)
	}
}
