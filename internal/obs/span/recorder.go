package span

import (
	"io"
	"sync"
	"time"

	"dx100/internal/obs"
)

// Recorder collects one trace's (or one server's) spans into a
// ring-buffered obs sink. The sink itself is single-goroutine by
// contract, so the recorder serializes emissions behind a mutex —
// spans start and end on HTTP handler and worker goroutines
// concurrently.
//
// Timestamps are microseconds since the recorder's epoch (its
// creation), stored in the event Cycle field; the Chrome encoder's ts
// unit is microseconds, so recorded spans lay out in real time in
// Perfetto.
type Recorder struct {
	mu    sync.Mutex
	sink  *obs.Sink
	epoch time.Time
	now   func() time.Time // test seam; time.Now in production
}

// NewRecorder returns a recorder whose ring keeps the most recent cap
// spans (obs.DefaultSinkCap when cap <= 0). A nil *Recorder is the
// disabled state: Start returns nil and every span method no-ops.
func NewRecorder(cap int) *Recorder {
	s := obs.NewSink(cap)
	s.SetMask(obs.MaskSpans)
	return &Recorder{sink: s, epoch: time.Now(), now: time.Now}
}

// Span is one in-flight operation. Created by Recorder.Start (nil when
// the recorder is nil or disabled); finished by End, which emits the
// record. All methods are nil-safe.
type Span struct {
	rec    *Recorder
	name   string
	ctx    Context
	parent SpanID
	start  time.Time
	status int64
	async  bool
	ended  bool
}

// Start opens a span. A valid parent context places the span in the
// parent's trace; an invalid (zero) parent starts a new trace. The
// span is recorded when End is called.
func (r *Recorder) Start(name string, parent Context) *Span {
	return r.start(name, parent, false)
}

// StartAsync opens a long-lived span recorded as a begin/end pair
// (Chrome nestable async events) instead of one complete event, so it
// is visible in the trace even while still open — dx100d uses this for
// the whole-job span that brackets queue wait and execution.
func (r *Recorder) StartAsync(name string, parent Context) *Span {
	return r.start(name, parent, true)
}

func (r *Recorder) start(name string, parent Context, async bool) *Span {
	if r == nil {
		return nil
	}
	s := &Span{rec: r, name: name, parent: parent.Span, start: r.now(), async: async}
	if parent.Valid() {
		s.ctx = Context{Trace: parent.Trace, Span: NewSpanID(), Flags: parent.Flags | 1}
	} else {
		s.ctx = Context{Trace: NewTraceID(), Span: NewSpanID(), Flags: 1}
		s.parent = SpanID{}
	}
	if async {
		r.emit(obs.EvSpanBegin, s, s.start, 0)
	}
	return s
}

// Context returns the span's trace position — what a child span or an
// outgoing traceparent header should carry. Zero for a nil span.
func (s *Span) Context() Context {
	if s == nil {
		return Context{}
	}
	return s.ctx
}

// SetStatus records a status code rendered into the span's args (the
// daemon stores HTTP statuses and 0/1 job outcomes). Last call wins.
func (s *Span) SetStatus(code int64) {
	if s != nil {
		s.status = code
	}
}

// End finishes the span and emits its record: a complete event for
// Start spans, the closing half of the async pair for StartAsync
// spans. End is idempotent; a nil span no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.mu.Lock()
	if s.ended {
		s.rec.mu.Unlock()
		return
	}
	s.ended = true
	end := s.rec.now()
	if s.async {
		s.rec.emitLocked(obs.EvSpanEnd, s, end, 0)
	} else {
		s.rec.emitLocked(obs.EvSpan, s, s.start, end.Sub(s.start).Microseconds())
	}
	s.rec.mu.Unlock()
}

func (r *Recorder) emit(kind obs.Kind, s *Span, at time.Time, dur int64) {
	r.mu.Lock()
	r.emitLocked(kind, s, at, dur)
	r.mu.Unlock()
}

func (r *Recorder) emitLocked(kind obs.Kind, s *Span, at time.Time, dur int64) {
	ts := at.Sub(r.epoch).Microseconds()
	if ts < 0 {
		ts = 0
	}
	r.sink.Emit(obs.SpanEvent(kind, uint64(ts), s.name,
		s.ctx.Trace.hi(), s.ctx.Trace.lo(), s.ctx.Span.bits(), s.parent.bits(), dur, s.status))
}

// Events snapshots the recorded span events in emission order.
func (r *Recorder) Events() []obs.Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sink.Events()
}

// WriteChrome writes the recorded spans as a complete Chrome
// trace_event JSON document (the GET /v1/runs/{id}/trace payload).
func (r *Recorder) WriteChrome(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n\n]}\n")
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sink.WriteChromeTrace(w)
}
