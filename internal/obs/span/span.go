// Package span implements the lightweight lifecycle-span model behind
// dx100d's request tracing: W3C trace-context identifiers (TraceID,
// SpanID, traceparent parse/format for cross-daemon propagation once
// the fleet exists), and a Recorder that emits finished spans into the
// obs event sink as EvSpan/EvSpanBegin/EvSpanEnd records. The sink's
// Chrome encoder renders them as complete and nestable-async
// trace_event objects, so a recorded trace loads directly in Perfetto
// or chrome://tracing.
//
// The model is deliberately tiny — no baggage, no attributes, no
// samplers. A span is a name, a start time, a duration, a status code
// and its place in the trace tree; everything else the daemon needs
// (route, job id) goes in the span name or the correlated slog lines.
//
// Like the rest of the obs layer, disabled tracing is free: a nil
// *Recorder starts nil *Spans, and every method on both is nil-safe
// and allocation-free (TestNilRecorderZeroAllocs pins this).
package span

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// TraceID identifies one end-to-end request across every daemon that
// touches it (16 bytes, per W3C trace-context).
type TraceID [16]byte

// SpanID identifies one operation within a trace (8 bytes).
type SpanID [8]byte

// IsZero reports the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the id as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// hi and lo split a TraceID into the two uint64 halves the flat obs
// event args carry.
func (t TraceID) hi() uint64 { return binary.BigEndian.Uint64(t[:8]) }
func (t TraceID) lo() uint64 { return binary.BigEndian.Uint64(t[8:]) }

func (s SpanID) bits() uint64 { return binary.BigEndian.Uint64(s[:]) }

// Context is a span's position in its trace: which trace, which span,
// and the W3C trace flags (bit 0 = sampled).
type Context struct {
	Trace TraceID
	Span  SpanID
	Flags byte
}

// Valid reports whether the context names a real span: both ids
// non-zero, as the traceparent spec requires.
func (c Context) Valid() bool { return !c.Trace.IsZero() && !c.Span.IsZero() }

// Traceparent renders the context in W3C traceparent form:
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
func (c Context) Traceparent() string {
	b := make([]byte, 0, 55)
	b = append(b, "00-"...)
	b = appendHexBytes(b, c.Trace[:])
	b = append(b, '-')
	b = appendHexBytes(b, c.Span[:])
	b = append(b, '-')
	b = appendHexBytes(b, []byte{c.Flags})
	return string(b)
}

func appendHexBytes(b, src []byte) []byte {
	const digits = "0123456789abcdef"
	for _, v := range src {
		b = append(b, digits[v>>4], digits[v&0xf])
	}
	return b
}

// ParseTraceparent parses a W3C traceparent header. It enforces the
// spec strictly for version 00 (exact length, lowercase hex, non-zero
// trace and span ids, version ff forbidden) and applies the mandated
// forward-compatibility rule for higher versions: parse the leading
// version-00 fields and require the extra data to be '-'-separated.
func ParseTraceparent(h string) (Context, error) {
	if len(h) < 55 {
		return Context{}, fmt.Errorf("span: traceparent too short (%d bytes, need 55)", len(h))
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return Context{}, fmt.Errorf("span: traceparent field delimiters misplaced in %q", h)
	}
	ver, ok := hexField(h[0:2])
	if !ok {
		return Context{}, fmt.Errorf("span: traceparent version %q is not hex", h[0:2])
	}
	version := ver[0]
	if version == 0xff {
		return Context{}, fmt.Errorf("span: traceparent version ff is forbidden")
	}
	if version == 0 && len(h) != 55 {
		return Context{}, fmt.Errorf("span: version-00 traceparent must be exactly 55 bytes, got %d", len(h))
	}
	if version > 0 && len(h) > 55 && h[55] != '-' {
		return Context{}, fmt.Errorf("span: traceparent trailing data must be '-'-separated")
	}
	tr, ok := hexField(h[3:35])
	if !ok {
		return Context{}, fmt.Errorf("span: trace id %q is not lowercase hex", h[3:35])
	}
	sp, ok := hexField(h[36:52])
	if !ok {
		return Context{}, fmt.Errorf("span: span id %q is not lowercase hex", h[36:52])
	}
	fl, ok := hexField(h[53:55])
	if !ok {
		return Context{}, fmt.Errorf("span: trace flags %q are not hex", h[53:55])
	}
	var c Context
	copy(c.Trace[:], tr)
	copy(c.Span[:], sp)
	c.Flags = fl[0]
	if c.Trace.IsZero() {
		return Context{}, fmt.Errorf("span: all-zero trace id is invalid")
	}
	if c.Span.IsZero() {
		return Context{}, fmt.Errorf("span: all-zero span id is invalid")
	}
	return c, nil
}

// hexField decodes an even-length lowercase-hex string; ok is false on
// any character outside [0-9a-f] (the W3C grammar forbids uppercase).
func hexField(s string) ([]byte, bool) {
	out := make([]byte, len(s)/2)
	for i := 0; i < len(s); i++ {
		var v byte
		switch c := s[i]; {
		case c >= '0' && c <= '9':
			v = c - '0'
		case c >= 'a' && c <= 'f':
			v = c - 'a' + 10
		default:
			return nil, false
		}
		if i%2 == 0 {
			out[i/2] = v << 4
		} else {
			out[i/2] |= v
		}
	}
	return out, true
}

// Id generation: crypto-strength when the platform provides it, with a
// time-seeded fallback so tracing never fails a request. Both paths
// reject the all-zero ids the wire format forbids.
var fallback struct {
	sync.Mutex
	rng *rand.Rand
}

func randomID(b []byte) {
	if _, err := crand.Read(b); err == nil {
		for _, v := range b {
			if v != 0 {
				return
			}
		}
	}
	fallback.Lock()
	if fallback.rng == nil {
		fallback.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	for {
		fallback.rng.Read(b)
		for _, v := range b {
			if v != 0 {
				fallback.Unlock()
				return
			}
		}
	}
}

// NewTraceID returns a fresh random trace id.
func NewTraceID() TraceID {
	var t TraceID
	randomID(t[:])
	return t
}

// NewSpanID returns a fresh random span id.
func NewSpanID() SpanID {
	var s SpanID
	randomID(s[:])
	return s
}
