package span

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"dx100/internal/obs"
)

func TestTraceparentRoundTrip(t *testing.T) {
	for i := 0; i < 64; i++ {
		c := Context{Trace: NewTraceID(), Span: NewSpanID(), Flags: byte(i * 5)}
		h := c.Traceparent()
		if len(h) != 55 {
			t.Fatalf("Traceparent() = %q, len %d, want 55", h, len(h))
		}
		got, err := ParseTraceparent(h)
		if err != nil {
			t.Fatalf("ParseTraceparent(%q): %v", h, err)
		}
		if got != c {
			t.Fatalf("round trip: got %+v, want %+v", got, c)
		}
	}
}

func TestParseTraceparentW3CExample(t *testing.T) {
	const h = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	c, err := ParseTraceparent(h)
	if err != nil {
		t.Fatal(err)
	}
	if c.Trace.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace id = %s", c.Trace)
	}
	if c.Span.String() != "00f067aa0ba902b7" {
		t.Errorf("span id = %s", c.Span)
	}
	if c.Flags != 1 {
		t.Errorf("flags = %#x, want 1", c.Flags)
	}
	if c.Traceparent() != h {
		t.Errorf("re-render = %q, want %q", c.Traceparent(), h)
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":               "",
		"short":               "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0",
		"uppercase trace":     "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",
		"uppercase span":      "00-4bf92f3577b34da6a3ce929d0e0e4736-00F067AA0BA902B7-01",
		"zero trace id":       "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"zero span id":        "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		"version ff":          "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"bad delimiter":       "00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"delimiter shifted":   "00-4bf92f3577b34da6a3ce929d0e0e473-600f067aa0ba902b7-01",
		"non-hex trace":       "00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01",
		"non-hex flags":       "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0x",
		"v00 with trailer":    "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
		"v01 trailer no dash": "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01extra",
	}
	for name, h := range cases {
		if _, err := ParseTraceparent(h); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted a malformed header", name, h)
		}
	}
}

// TestParseTraceparentForwardCompat pins the W3C rule for unknown
// higher versions: parse the version-00 prefix, allow '-'-separated
// trailing data.
func TestParseTraceparentForwardCompat(t *testing.T) {
	c, err := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-future")
	if err != nil {
		t.Fatal(err)
	}
	if c.Trace.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace id = %s", c.Trace)
	}
}

func FuzzParseTraceparent(f *testing.F) {
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00")
	f.Add("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-future")
	f.Add("ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add(strings.Repeat("-", 55))
	f.Fuzz(func(t *testing.T, h string) {
		c, err := ParseTraceparent(h)
		if err != nil {
			return
		}
		// Anything accepted must be valid and re-render to a header that
		// parses back to the same ids.
		if !c.Valid() {
			t.Fatalf("accepted invalid context from %q", h)
		}
		got, err := ParseTraceparent(c.Traceparent())
		if err != nil {
			t.Fatalf("re-render of accepted %q failed to parse: %v", h, err)
		}
		if got.Trace != c.Trace || got.Span != c.Span || got.Flags != c.Flags {
			t.Fatalf("re-render of %q round-tripped to %+v, want %+v", h, got, c)
		}
	})
}

// TestNilRecorderZeroAllocs pins the disabled state's cost: a nil
// recorder must start, annotate and end spans without allocating — the
// package doc and the engine's hot paths rely on it.
func TestNilRecorderZeroAllocs(t *testing.T) {
	var rec *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		sp := rec.Start("op", Context{})
		sp.SetStatus(1)
		_ = sp.Context()
		sp.End()
		asp := rec.StartAsync("op", Context{})
		asp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil recorder span lifecycle allocates %v/op, want 0", allocs)
	}
}

// newTestRecorder pins the clock so span durations are deterministic.
func newTestRecorder(step time.Duration) *Recorder {
	r := NewRecorder(0)
	base := time.Unix(0, 0)
	r.epoch = base
	tick := 0
	r.now = func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * step)
	}
	return r
}

func TestRecorderParentLinks(t *testing.T) {
	rec := newTestRecorder(time.Millisecond)
	root := rec.Start("root", Context{})
	child := rec.Start("child", root.Context())
	if child.Context().Trace != root.Context().Trace {
		t.Fatal("child did not inherit the root's trace id")
	}
	if child.Context().Span == root.Context().Span {
		t.Fatal("child reused the root's span id")
	}
	child.End()
	root.End()

	evs := rec.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	// Ends emit in end order: child first.
	if evs[0].Src != "child" || evs[1].Src != "root" {
		t.Fatalf("event order = %s, %s", evs[0].Src, evs[1].Src)
	}
	if evs[0].Kind != obs.EvSpan {
		t.Fatalf("child kind = %v, want EvSpan", evs[0].Kind)
	}
	if got, want := uint64(evs[0].Args[3]), root.Context().Span.bits(); got != want {
		t.Fatalf("child parent_span_id = %#x, want root %#x", got, want)
	}
	if evs[1].Args[3] != 0 {
		t.Fatalf("root parent_span_id = %#x, want 0", evs[1].Args[3])
	}
	if evs[0].Args[4] <= 0 {
		t.Fatalf("child dur_us = %d, want > 0", evs[0].Args[4])
	}
}

func TestAsyncSpanEmitsBeginEndPair(t *testing.T) {
	rec := newTestRecorder(time.Millisecond)
	sp := rec.StartAsync("job", Context{})
	evs := rec.Events()
	if len(evs) != 1 || evs[0].Kind != obs.EvSpanBegin {
		t.Fatalf("open async span: events = %+v, want one EvSpanBegin", evs)
	}
	sp.End()
	sp.End() // idempotent
	evs = rec.Events()
	if len(evs) != 2 || evs[1].Kind != obs.EvSpanEnd {
		t.Fatalf("events after End = %d (last kind %v), want 2 with EvSpanEnd", len(evs), evs[len(evs)-1].Kind)
	}
	if evs[0].Args[2] != evs[1].Args[2] {
		t.Fatal("begin/end span ids differ — Chrome cannot pair them")
	}
}

// chromeDoc decodes a Chrome trace_event JSON document.
type chromeDoc struct {
	DisplayTimeUnit string           `json:"displayTimeUnit"`
	TraceEvents     []map[string]any `json:"traceEvents"`
}

// TestWriteChromeValidJSON renders a small trace and checks the
// document decodes as trace_event JSON with the right phases, ids and
// args — the same assertion CI runs against the live /trace endpoint.
func TestWriteChromeValidJSON(t *testing.T) {
	rec := newTestRecorder(time.Millisecond)
	job := rec.StartAsync("job.run", Context{})
	run := rec.Start("run", job.Context())
	run.SetStatus(7)
	run.End()
	job.End()

	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteChrome output is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		for _, k := range []string{"name", "ts", "pid", "tid"} {
			if _, ok := ev[k]; !ok {
				t.Errorf("trace event missing %q: %v", k, ev)
			}
		}
	}
	if phases["b"] != 1 || phases["e"] != 1 || phases["X"] != 1 {
		t.Fatalf("phases = %v, want one each of b/e/X", phases)
	}
	for _, ev := range doc.TraceEvents {
		if ev["name"] == "run" {
			args := ev["args"].(map[string]any)
			if args["trace_id"] != job.Context().Trace.String() {
				t.Errorf("run trace_id = %v, want %s", args["trace_id"], job.Context().Trace)
			}
			if args["parent_span_id"] != job.Context().Span.String() {
				t.Errorf("run parent_span_id = %v, want %s", args["parent_span_id"], job.Context().Span)
			}
			if args["status"] != float64(7) {
				t.Errorf("run status = %v, want 7", args["status"])
			}
			if ev["dur"] == nil {
				t.Error("complete event missing dur")
			}
		}
	}
}

// TestNilRecorderWriteChrome pins the disabled recorder's output: an
// empty but still valid trace document.
func TestNilRecorderWriteChrome(t *testing.T) {
	var rec *Recorder
	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil recorder document invalid: %v\n%q", err, buf.String())
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("nil recorder has %d events", len(doc.TraceEvents))
	}
}

// TestSpanJSONLEncoding exercises the sink's JSONL encoder for span
// kinds (the Chrome path is covered above).
func TestSpanJSONLEncoding(t *testing.T) {
	rec := newTestRecorder(time.Millisecond)
	root := rec.Start("root", Context{})
	child := rec.Start("child", root.Context())
	child.End()
	root.End()
	var buf bytes.Buffer
	rec.mu.Lock()
	err := rec.sink.WriteJSONL(&buf)
	rec.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	for _, ln := range lines {
		var row map[string]any
		if err := json.Unmarshal([]byte(ln), &row); err != nil {
			t.Fatalf("line %q: %v", ln, err)
		}
		if row["cat"] != "span" {
			t.Errorf("cat = %v, want span", row["cat"])
		}
		args := row["args"].(map[string]any)
		tid, _ := args["trace_id"].(string)
		if len(tid) != 32 {
			t.Errorf("trace_id %q is not 32 hex digits", tid)
		}
		sid, _ := args["span_id"].(string)
		if len(sid) != 16 {
			t.Errorf("span_id %q is not 16 hex digits", sid)
		}
	}
	// The child line (emitted first) must carry its parent link; the
	// root line must not.
	if !strings.Contains(lines[0], "parent_span_id") {
		t.Error("child JSONL line missing parent_span_id")
	}
	if strings.Contains(lines[1], "parent_span_id") {
		t.Error("root JSONL line has a parent_span_id")
	}
}
