// Package obs is the observability layer shared by the simulator and
// the dx100d service: a typed, allocation-conscious metrics registry
// (counters, gauges, histograms) with snapshot and Prometheus/JSON
// encoders, and an event-trace sink (ring-buffered, optionally spilled
// to JSON Lines or Chrome trace_event format) that components emit
// structured events into.
//
// Two concurrency regimes coexist deliberately:
//
//   - Counter and Histogram are unsynchronized. They are built for the
//     simulator's single-goroutine hot loop, where an atomic add per
//     DRAM command would be pure overhead; snapshots are taken after
//     the run (or from the same goroutine).
//   - SyncCounter, Gauge, GaugeFunc, CounterFunc and SyncHistogram are
//     safe for concurrent use. They are built for servers, where
//     request handlers bump them while /metrics scrapes concurrently.
//
// The trace sink's cardinal invariant is that it is zero-cost when
// absent: every hook point holds a possibly-nil *Sink, and both the
// nil-pointer guard and the nil-receiver Emit short-circuit before any
// event is materialized. DESIGN.md documents the contract; the engine
// hot-loop allocation test pins it.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotone (by convention) float64 statistic for
// single-goroutine use. Hot paths obtain a *Counter handle once and
// bump it directly — no map lookup, no allocation. A counter is
// "touched" once any Add/Inc/Set hits it; snapshots list only touched
// counters, so handle-based and name-based usage render identically,
// including across Reset (which un-touches the counter while keeping
// handles valid).
type Counter struct {
	v       float64
	touched bool
}

// Add increments the counter by v.
func (c *Counter) Add(v float64) {
	c.v += v
	c.touched = true
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Set overwrites the counter.
func (c *Counter) Set(v float64) {
	c.v = v
	c.touched = true
}

// Value returns the current value (zero when untouched).
func (c *Counter) Value() float64 { return c.v }

// Touched reports whether the counter has been written since creation
// or the last Reset.
func (c *Counter) Touched() bool { return c.touched }

// Reset zeroes and un-touches the counter. Handles stay valid.
func (c *Counter) Reset() {
	c.v = 0
	c.touched = false
}

// SyncCounter is an integer counter safe for concurrent use — the
// server-side sibling of Counter.
type SyncCounter struct {
	n atomic.Int64
}

// Add increments the counter by delta.
func (c *SyncCounter) Add(delta int64) { c.n.Add(delta) }

// Inc increments the counter by one.
func (c *SyncCounter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *SyncCounter) Value() int64 { return c.n.Load() }

// Gauge is a settable float64 safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution for single-goroutine use.
// Bounds are inclusive upper bounds; observations above the last bound
// land in the implicit +Inf bucket.
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; counts[len(bounds)] is +Inf
	sum    float64
	n      uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) { h.ObserveN(v, 1) }

// ObserveN records n identical observations in one step. Components
// that skip provably-idle cycles use it to bulk-account the elided
// per-cycle observations exactly (see sim.CycleSkipper): ObserveN(v, n)
// leaves the histogram bit-identical to n unit Observes while sums stay
// below 2^53.
func (h *Histogram) ObserveN(v float64, n uint64) {
	if n == 0 {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i] += n
	h.sum += v * float64(n)
	h.n += n
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// SyncHistogram is a mutex-guarded Histogram for concurrent use (job
// durations on the service, not simulator hot paths).
type SyncHistogram struct {
	mu sync.Mutex
	h  Histogram
}

// Observe records one observation.
func (h *SyncHistogram) Observe(v float64) {
	h.mu.Lock()
	h.h.Observe(v)
	h.mu.Unlock()
}

// snapshot copies the inner histogram under the lock.
func (h *SyncHistogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.snapshot()
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.n,
	}
	return s
}

// ExpBounds returns exponentially spaced bucket bounds 0, 1, 2, 4, ...
// up to and including the first power of two >= max — the shape used
// for queue-occupancy and latency distributions.
func ExpBounds(max int) []float64 {
	bounds := []float64{0}
	for b := 1; ; b *= 2 {
		bounds = append(bounds, float64(b))
		if b >= max {
			return bounds
		}
	}
}

// Registry is a named collection of metrics. Registration is
// map-guarded and may happen from any goroutine; reading plain Counter
// and Histogram values through Snapshot is only safe once their
// writer goroutine has quiesced (the experiment harness snapshots after
// the run). Sync metrics and func-backed metrics are safe to snapshot
// at any time.
type Registry struct {
	mu           sync.Mutex
	counters     map[string]*Counter
	syncCounters map[string]*SyncCounter
	counterFns   map[string]func() float64
	gauges       map[string]*Gauge
	gaugeFns     map[string]func() float64
	hists        map[string]*Histogram
	syncHists    map[string]*SyncHistogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:     make(map[string]*Counter),
		syncCounters: make(map[string]*SyncCounter),
		counterFns:   make(map[string]func() float64),
		gauges:       make(map[string]*Gauge),
		gaugeFns:     make(map[string]func() float64),
		hists:        make(map[string]*Histogram),
		syncHists:    make(map[string]*SyncHistogram),
	}
}

// Counter returns the handle for name, creating it (untouched) on
// first use. Handles remain valid across ResetCounters.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// SyncCounter returns the concurrent counter for name, creating it on
// first use.
func (r *Registry) SyncCounter(name string) *SyncCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.syncCounters[name]
	if !ok {
		c = &SyncCounter{}
		r.syncCounters[name] = c
	}
	return c
}

// CounterFunc registers a callback rendered as a counter — for values
// another subsystem already tracks (an atomic the server owns).
func (r *Registry) CounterFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counterFns[name] = fn
}

// Gauge returns the settable gauge for name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback rendered as a gauge; fn is invoked at
// snapshot time and must be safe to call from the scraping goroutine.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = fn
}

// Histogram returns the histogram for name, creating it with the given
// bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]uint64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// SyncHistogram returns the concurrent histogram for name, creating it
// with the given bounds on first use.
func (r *Registry) SyncHistogram(name string, bounds []float64) *SyncHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.syncHists[name]
	if !ok {
		h = &SyncHistogram{h: Histogram{bounds: append([]float64(nil), bounds...), counts: make([]uint64, len(bounds)+1)}}
		r.syncHists[name] = h
	}
	return h
}

// ResetCounters zeroes and un-touches every plain counter and clears
// every plain histogram (components keep their handles, so measurement
// can restart after a warm-up phase). Sync and func-backed metrics are
// left alone — they belong to long-running services, not runs.
func (r *Registry) ResetCounters() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.Reset()
	}
	for _, h := range r.hists {
		for i := range h.counts {
			h.counts[i] = 0
		}
		h.sum, h.n = 0, 0
	}
}

// CounterValue returns the plain counter's value, zero if absent.
func (r *Registry) CounterValue(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c.v
	}
	return 0
}

// CounterNames returns the touched plain-counter names, sorted.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n, c := range r.counters {
		if c.touched {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// HistogramSnapshot is one histogram's frozen state.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // len(Bounds)+1; last is +Inf
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucketed
// distribution, interpolating linearly inside the bucket that contains
// the target rank — the same estimate a Prometheus histogram_quantile
// over these buckets would produce. The +Inf bucket clamps to the last
// finite bound. Returns NaN for an empty histogram or q outside [0,1].
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || q < 0 || q > 1 || len(s.Bounds) == 0 {
		return math.NaN()
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			// Target rank lands in the +Inf bucket: the estimate is
			// clamped to the largest finite bound.
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Snapshot is a frozen, encodable view of a registry. Counters fold
// plain (touched only), sync and func-backed counters together; Gauges
// fold settable and func-backed gauges.
type Snapshot struct {
	Counters   map[string]float64           `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot freezes the registry. Func-backed metrics are evaluated
// inside the call.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	s := Snapshot{
		Counters:   make(map[string]float64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for n, c := range r.counters {
		if c.touched {
			s.Counters[n] = c.v
		}
	}
	for n, c := range r.syncCounters {
		s.Counters[n] = float64(c.Value())
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.snapshot()
	}
	// Func-backed metrics and sync histograms take their own locks;
	// evaluate them outside r.mu so a callback that consults the
	// registry cannot deadlock.
	counterFns := make(map[string]func() float64, len(r.counterFns))
	for n, fn := range r.counterFns {
		counterFns[n] = fn
	}
	gaugeFns := make(map[string]func() float64, len(r.gaugeFns))
	for n, fn := range r.gaugeFns {
		gaugeFns[n] = fn
	}
	syncHists := make(map[string]*SyncHistogram, len(r.syncHists))
	for n, h := range r.syncHists {
		syncHists[n] = h
	}
	r.mu.Unlock()
	for n, fn := range counterFns {
		s.Counters[n] = fn()
	}
	for n, fn := range gaugeFns {
		s.Gauges[n] = fn()
	}
	for n, h := range syncHists {
		s.Histograms[n] = h.snapshot()
	}
	return s
}
